#include "pandora/dyn/dynamic_clustering.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "pandora/common/expect.hpp"
#include "pandora/common/timer.hpp"
#include "pandora/exec/failpoint.hpp"
#include "pandora/exec/fingerprint.hpp"
#include "pandora/exec/parallel.hpp"
#include "pandora/exec/sort.hpp"
#include "pandora/graph/union_find.hpp"
#include "pandora/obs/metrics.hpp"
#include "pandora/spatial/emst.hpp"

namespace pandora::dyn {

namespace {

/// Repair latency histograms (whole insert/erase call, validation through
/// dendrogram replay); recorded on successful completion only — a repair
/// that throws poisons the stream and its time is not a latency sample.
obs::Histogram& insert_metric() {
  static obs::Histogram& metric = obs::registry().histogram("pandora_dyn_insert_seconds");
  return metric;
}
obs::Histogram& erase_metric() {
  static obs::Histogram& metric = obs::registry().histogram("pandora_dyn_erase_seconds");
  return metric;
}

/// Process-unique instance ids: the epoch fingerprints of two concurrently
/// live DynamicClustering objects must never collide in a shared cache.
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// A candidate edge proposed by one point during a Borůvka repair round.
struct Candidate {
  double weight = std::numeric_limits<double>::infinity();
  index_t partner = kNone;
  index_t maintained_edge = kNone;  ///< kNone = a new star edge

  /// Lexicographic (weight, partner): the deterministic per-point minimum.
  [[nodiscard]] bool better_than(const Candidate& other) const {
    if (weight != other.weight) return weight < other.weight;
    return partner < other.partner;
  }
};

/// Brute-force cutoff: below this many batch points, scanning them beats
/// building and annotating a kd-tree over the batch.
constexpr index_t kBatchTreeThreshold = 32;

}  // namespace

DynamicClustering::DynamicClustering(const exec::Executor& exec, DynamicOptions options)
    : exec_(&exec),
      options_(options),
      points_(std::make_unique<spatial::PointSet>()),
      instance_(next_instance_id()) {}

void DynamicClustering::rebuild_index() {
  tree_ = std::make_unique<spatial::KdTree>(*points_, options_.leaf_size);
  indexed_ = points_->size();
  ++stats_.index_rebuilds;
}

void DynamicClustering::replay_dendrogram() {
  dendrogram::PandoraOptions pandora_options;
  pandora_options.expansion = options_.expansion;
  dendrogram::pandora_dendrogram_into(*exec_, sorted_, pandora_options, dendrogram_);
}

void DynamicClustering::rebuild_from_scratch() {
  rebuild_index();
  edges_ = spatial::euclidean_mst(*exec_, *points_, *tree_);
  dendrogram::sort_edges_into(*exec_, edges_, points_->size(), sorted_);
  replay_dendrogram();
}

std::vector<index_t> DynamicClustering::insert(const spatial::PointSet& batch) {
  const index_t m = batch.size();
  std::vector<index_t> ids;
  ids.reserve(static_cast<std::size_t>(m));
  if (m == 0) return ids;
  const exec::ScopedSpan span(*exec_, "dyn.insert");
  const Timer timer;

  PANDORA_EXPECT(&batch != points_.get(), "cannot insert a stream's own point set into itself");
  PANDORA_EXPECT(healthy_, "stream poisoned by an earlier failed update");
  // Validate before any mutation: a rejected batch must leave the stream
  // untouched (and healthy), unlike a mid-repair failure.
  spatial::validate_points(batch, "dyn::insert");
  const index_t n_before = points_->size();
  if (n_before == 0) {
    *points_ = batch;
  } else {
    PANDORA_EXPECT(batch.dim() == points_->dim(),
                   "inserted points must match the set's dimensionality");
    points_->coords().insert(points_->coords().end(), batch.coords().begin(),
                             batch.coords().end());
  }
  for (index_t j = 0; j < m; ++j) {
    const index_t id = next_id_++;
    ids.push_back(id);
    id_of_slot_.push_back(id);
    slot_of_id_.push_back(n_before + j);
  }
  stats_.points_inserted += static_cast<std::uint64_t>(m);
  ++stats_.update_batches;
  // The epoch bumps at the FIRST mutation, not after the repair: if the
  // repair throws mid-way, the points have already changed and the old
  // epoch's cached artifacts must already be unreachable.  `healthy_`
  // stays false over the same window, so a caller that catches the
  // exception cannot keep computing on a half-updated tree.
  ++epoch_;
  healthy_ = false;
  // Chaos seam: the widest mid-repair window — points mutated, structures not.
  PANDORA_FAILPOINT("dyn.insert.repair");

  if (n_before == 0) {
    rebuild_from_scratch();
    healthy_ = true;
    insert_metric().observe(timer.seconds());
    return ids;
  }

  std::vector<char> keep;
  graph::EdgeList added;
  repair_after_insert(n_before, m, keep, added);
  finish_update(keep, added, {}, points_->size());
  healthy_ = true;

  // Amortised index maintenance: queries brute-force the unindexed tail
  // until it outgrows its budget.
  const auto tail = static_cast<double>(points_->size() - indexed_);
  if (tail > std::max(64.0, options_.index_rebuild_fraction *
                                static_cast<double>(points_->size())))
    rebuild_index();
  insert_metric().observe(timer.seconds());
  return ids;
}

index_t DynamicClustering::insert(std::span<const double> coords) {
  PANDORA_EXPECT(!coords.empty(), "a point needs at least one coordinate");
  spatial::PointSet one(static_cast<int>(coords.size()), 1);
  std::copy(coords.begin(), coords.end(), one.coords().begin());
  return insert(one).front();
}

/// Exact incremental repair (see the class comment).  The candidate graph is
/// the maintained tree plus the implicit stars of the new points; its MST is
/// the true EMST of the enlarged set (any absent edge is beaten by an
/// existing path, so the cycle property discards it).  Cheap pre-merge: a
/// maintained edge can only be displaced by a path through a new point q,
/// which uses two distinct edges at q, the heavier one at least q's
/// 2nd-nearest-neighbour distance — so every maintained edge at or below
/// min_q d2(q) is certainly kept and its endpoints start pre-merged.  The
/// remaining "doubtful" edges and the stars then go through Borůvka rounds:
/// established points scan their doubtful edges and probe the batch, new
/// points probe the kd index (coordinate queries: they are not indexed yet)
/// and scan the unindexed tail.
void DynamicClustering::repair_after_insert(index_t n_before, index_t m,
                                            std::vector<char>& keep,
                                            graph::EdgeList& added) {
  const index_t n = points_->size();
  const spatial::PointSet& points = *points_;
  exec::Workspace& workspace = exec_->workspace();

  // --- safety threshold: min over new points of their d2 ------------------
  // Parallel over the batch (a churn batch probes m x (tail + m) distances);
  // the tiny per-point probe vector is the only allocation.
  double w_safe = std::numeric_limits<double>::infinity();
  {
    auto bound_lease = workspace.take_uninit<double>(m);
    const std::span<double> bound = bound_lease.span();
    // Batched index probe pre-pass: the batch rows are contiguous row-major
    // in the point set, so one knn_batch sweep per chunk probes every new
    // point's two nearest INDEXED neighbours (coordinate queries — the batch
    // is not indexed yet), amortizing the tree walk across the group.  Slots
    // stay +inf where the index has fewer than two points; offering +inf
    // below is a no-op.
    auto knn_lease = workspace.take<double>(static_cast<size_type>(m) * 2,
                                            std::numeric_limits<double>::infinity());
    const std::span<double> knn_sq = knn_lease.span();
    if (indexed_ > 0) {
      const auto k_eff = static_cast<index_t>(std::min<index_t>(2, indexed_));
      constexpr index_t kProbeChunk = 128;
      const int num_chunks = static_cast<int>((m + kProbeChunk - 1) / kProbeChunk);
      auto probe_body = [&](int c) {
        // thread_local: the batch result buffer keeps its capacity across
        // chunks and batches, so the steady-state probe allocates nothing
        // (the arena cannot lease a std::vector).
        static thread_local std::vector<spatial::Neighbor> probe;
        const index_t lo = static_cast<index_t>(c) * kProbeChunk;
        const index_t hi = std::min<index_t>(m, lo + kProbeChunk);
        tree_->knn_batch(points.point(n_before + lo).data(), hi - lo, 2, probe);
        for (index_t j = lo; j < hi; ++j)
          for (index_t t = 0; t < k_eff; ++t)
            knn_sq[static_cast<std::size_t>(j) * 2 + static_cast<std::size_t>(t)] =
                probe[static_cast<std::size_t>(j - lo) * static_cast<std::size_t>(k_eff) +
                      static_cast<std::size_t>(t)]
                    .squared_distance;
      };
      exec_->run_chunks(num_chunks, exec_->num_threads(), probe_body);
    }
    exec::parallel_for(*exec_, m, [&](size_type j) {
      const index_t q = n_before + static_cast<index_t>(j);
      double d1_sq = std::numeric_limits<double>::infinity();
      double d2_sq = std::numeric_limits<double>::infinity();
      const auto offer = [&](double sq) {
        if (sq < d1_sq) {
          d2_sq = d1_sq;
          d1_sq = sq;
        } else if (sq < d2_sq) {
          d2_sq = sq;
        }
      };
      offer(knn_sq[static_cast<std::size_t>(j) * 2]);
      offer(knn_sq[static_cast<std::size_t>(j) * 2 + 1]);
      for (index_t p = indexed_; p < n; ++p) {  // unindexed tail + other new
        if (p == q) continue;
        offer(points.squared_distance(q, p));
      }
      // With a single other point d2 degenerates to d1 (still safe: a
      // 2-point set has no displaceable maintained edges of lower weight).
      bound[static_cast<std::size_t>(j)] =
          d2_sq < std::numeric_limits<double>::infinity() ? d2_sq : d1_sq;
    });
    for (index_t j = 0; j < m; ++j)
      w_safe = std::min(w_safe, std::sqrt(bound[static_cast<std::size_t>(j)]));
  }

  // --- pre-merge the safe maintained edges --------------------------------
  const auto e_old = static_cast<size_type>(edges_.size());
  keep.assign(static_cast<std::size_t>(e_old), 0);
  auto uf_lease = workspace.take_uninit<index_t>(n);
  graph::ConcurrentUnionFindView uf(uf_lease.span());
  exec::parallel_for(*exec_, n, [&](size_type x) {
    uf_lease[static_cast<std::size_t>(x)] = static_cast<index_t>(x);
  });
  index_t components = n;
  std::vector<index_t> doubtful;
  for (size_type i = 0; i < e_old; ++i) {
    const graph::WeightedEdge& e = edges_[static_cast<std::size_t>(i)];
    if (e.weight <= w_safe) {
      keep[static_cast<std::size_t>(i)] = 1;
      uf.unite(e.u, e.v);
      --components;
    } else {
      doubtful.push_back(static_cast<index_t>(i));
    }
  }

  // CSR adjacency over the doubtful edges only.
  const auto num_doubtful = static_cast<size_type>(doubtful.size());
  auto adj_offset_lease = workspace.take<index_t>(n + 1, 0);
  const std::span<index_t> adj_offset = adj_offset_lease.span();
  for (const index_t i : doubtful) {
    ++adj_offset[static_cast<std::size_t>(edges_[static_cast<std::size_t>(i)].u) + 1];
    ++adj_offset[static_cast<std::size_t>(edges_[static_cast<std::size_t>(i)].v) + 1];
  }
  for (index_t x = 0; x < n; ++x)
    adj_offset[static_cast<std::size_t>(x) + 1] += adj_offset[static_cast<std::size_t>(x)];
  auto adj_edge_lease = workspace.take_uninit<index_t>(2 * num_doubtful);
  const std::span<index_t> adj_edge = adj_edge_lease.span();
  {
    auto cursor_lease = workspace.take_uninit<index_t>(n);
    const std::span<index_t> cursor = cursor_lease.span();
    std::copy(adj_offset.begin(), adj_offset.begin() + n, cursor.begin());
    for (const index_t i : doubtful) {
      const graph::WeightedEdge& e = edges_[static_cast<std::size_t>(i)];
      adj_edge[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] = i;
      adj_edge[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] = i;
    }
  }

  // Optional kd-tree over just the batch, so established points can probe
  // "nearest new point in another component" in O(log m) instead of O(m).
  spatial::PointSet batch_points;
  std::unique_ptr<spatial::KdTree> batch_tree;
  spatial::KdTreeAnnotations batch_notes;
  if (m > kBatchTreeThreshold) {
    batch_points = spatial::PointSet(points.dim(), m);
    std::copy(points.coords().begin() +
                  static_cast<std::size_t>(n_before) * static_cast<std::size_t>(points.dim()),
              points.coords().end(), batch_points.coords().begin());
    batch_tree = std::make_unique<spatial::KdTree>(batch_points, options_.leaf_size);
  }

  // --- Borůvka rounds over the implicit candidate graph -------------------
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  constexpr index_t kUnset = std::numeric_limits<index_t>::max();
  auto component_lease = workspace.take_uninit<index_t>(n);
  const std::span<index_t> component = component_lease.span();
  auto best_weight_lease = workspace.take<std::uint64_t>(n, kInf);
  const std::span<std::uint64_t> best_weight = best_weight_lease.span();
  auto best_point_lease = workspace.take<index_t>(n, kUnset);
  const std::span<index_t> best_point = best_point_lease.span();
  auto candidate_lease = workspace.take<Candidate>(n, Candidate{});
  const std::span<Candidate> candidate = candidate_lease.span();
  auto batch_component_lease = workspace.take_uninit<index_t>(batch_tree ? m : 0);
  const std::span<index_t> batch_component = batch_component_lease.span();

  std::vector<index_t> roots;
  roots.reserve(static_cast<std::size_t>(components));
  for (index_t x = 0; x < n; ++x)
    if (uf.find(x) == x) roots.push_back(x);

  while (components > 1) {
    ++stats_.boruvka_rounds;
    exec::parallel_for(*exec_, n, [&](size_type x) {
      component[static_cast<std::size_t>(x)] = uf.find(static_cast<index_t>(x));
    });
    if (indexed_ > 0) tree_->annotate_components(*exec_, component, notes_);
    if (batch_tree) {
      exec::parallel_for(*exec_, m, [&](size_type j) {
        batch_component[static_cast<std::size_t>(j)] =
            component[static_cast<std::size_t>(n_before + j)];
      });
      batch_tree->annotate_components(*exec_, batch_component, batch_notes);
    }

    // Phase 1: every point proposes its best incident candidate edge.  A
    // previous round's candidate whose partner is still foreign remains the
    // exact per-point minimum (every candidate source — doubtful edges,
    // batch stars, index stars — only shrinks as components merge), so only
    // points made stale by the last round's hooks recompute.
    exec::parallel_for(*exec_, n, [&](size_type pi) {
      const auto p = static_cast<index_t>(pi);
      const index_t c = component[static_cast<std::size_t>(p)];
      {
        const Candidate& cached = candidate[static_cast<std::size_t>(p)];
        if (cached.partner != kNone &&
            component[static_cast<std::size_t>(cached.partner)] != c) {
          exec::atomic_fetch_min(best_weight[static_cast<std::size_t>(c)],
                                 exec::order_preserving_bits(cached.weight));
          return;
        }
      }
      Candidate best;
      // Doubtful maintained edges at p (established points only; new points
      // have none).
      for (index_t a = adj_offset[static_cast<std::size_t>(p)];
           a < adj_offset[static_cast<std::size_t>(p) + 1]; ++a) {
        const index_t i = adj_edge[static_cast<std::size_t>(a)];
        const graph::WeightedEdge& e = edges_[static_cast<std::size_t>(i)];
        const index_t other = e.u == p ? e.v : e.u;
        if (component[static_cast<std::size_t>(other)] == c) continue;
        const Candidate cand{e.weight, other, i};
        if (cand.better_than(best)) best = cand;
      }
      if (p < n_before) {
        // Established point: nearest batch point in another component.
        if (batch_tree) {
          const spatial::Neighbor nb = batch_tree->nearest_other_component(
              points.point(p), c, batch_component, batch_notes);
          if (nb.index != kNone) {
            const Candidate cand{std::sqrt(nb.squared_distance), n_before + nb.index, kNone};
            if (cand.better_than(best)) best = cand;
          }
        } else {
          for (index_t q = n_before; q < n; ++q) {
            if (component[static_cast<std::size_t>(q)] == c) continue;
            const Candidate cand{std::sqrt(points.squared_distance(p, q)), q, kNone};
            if (cand.better_than(best)) best = cand;
          }
        }
      } else {
        // New point: its star spans every live point — probe the index by
        // coordinates, scan the unindexed tail and the rest of the batch.
        if (indexed_ > 0) {
          const spatial::Neighbor nb =
              tree_->nearest_other_component(points.point(p), c, component, notes_);
          if (nb.index != kNone) {
            const Candidate cand{std::sqrt(nb.squared_distance), nb.index, kNone};
            if (cand.better_than(best)) best = cand;
          }
        }
        const index_t tail_end = batch_tree ? n_before : n;
        for (index_t t = indexed_; t < tail_end; ++t) {
          if (t == p || component[static_cast<std::size_t>(t)] == c) continue;
          const Candidate cand{std::sqrt(points.squared_distance(p, t)), t, kNone};
          if (cand.better_than(best)) best = cand;
        }
        if (batch_tree) {
          const spatial::Neighbor nb = batch_tree->nearest_other_component(
              points.point(p), c, batch_component, batch_notes);
          if (nb.index != kNone) {
            const Candidate cand{std::sqrt(nb.squared_distance), n_before + nb.index, kNone};
            if (cand.better_than(best)) best = cand;
          }
        }
      }
      candidate[static_cast<std::size_t>(p)] = best;
      if (best.partner != kNone)
        exec::atomic_fetch_min(best_weight[static_cast<std::size_t>(c)],
                               exec::order_preserving_bits(best.weight));
    });
    // Phase 2: among weight ties, the smallest proposing point id wins (cf.
    // spatial::emst — exact lexicographic minimum without a wide CAS).
    exec::parallel_for(*exec_, n, [&](size_type pi) {
      const auto p = static_cast<index_t>(pi);
      const Candidate& cand = candidate[static_cast<std::size_t>(p)];
      if (cand.partner == kNone) return;
      const index_t c = component[static_cast<std::size_t>(p)];
      if (best_weight[static_cast<std::size_t>(c)] == exec::order_preserving_bits(cand.weight))
        exec::atomic_fetch_min(best_point[static_cast<std::size_t>(c)], p);
    });

    // Phase 3: hook the winners (sequential, so ties can never form cycles).
    const index_t before = components;
    for (const index_t r : roots) {
      const index_t p = best_point[static_cast<std::size_t>(r)];
      if (p == kUnset) continue;
      const Candidate& cand = candidate[static_cast<std::size_t>(p)];
      if (uf.find(p) == uf.find(cand.partner)) continue;
      uf.unite(p, cand.partner);
      --components;
      if (cand.maintained_edge != kNone) {
        keep[static_cast<std::size_t>(cand.maintained_edge)] = 1;  // re-selected
      } else {
        added.push_back({p, cand.partner, cand.weight});
      }
    }
    PANDORA_EXPECT(components < before, "incremental Borůvka made no progress");

    std::vector<index_t> next_roots;
    next_roots.reserve(roots.size() / 2 + 1);
    for (const index_t r : roots) {
      if (uf.find(r) == r) next_roots.push_back(r);
      best_weight[static_cast<std::size_t>(r)] = kInf;
      best_point[static_cast<std::size_t>(r)] = kUnset;
    }
    roots.swap(next_roots);
  }
}

void DynamicClustering::erase(std::span<const index_t> ids) {
  if (ids.empty()) return;
  const exec::ScopedSpan span(*exec_, "dyn.erase");
  const Timer timer;
  PANDORA_EXPECT(healthy_, "stream poisoned by an earlier failed update");
  const index_t n_old = points_->size();
  exec::Workspace& workspace = exec_->workspace();
  auto alive_lease = workspace.take<char>(n_old, 1);
  const std::span<char> alive = alive_lease.span();
  // Validate the whole batch before mutating any mapping, so a bad id
  // throws without leaving the instance half-updated.
  for (const index_t id : ids) {
    const index_t slot = slot_of(id);
    PANDORA_EXPECT(slot != kNone, "erase: unknown or already-erased id");
    PANDORA_EXPECT(alive[static_cast<std::size_t>(slot)] != 0, "erase: duplicate id in batch");
    alive[static_cast<std::size_t>(slot)] = 0;
  }
  for (const index_t id : ids) slot_of_id_[static_cast<std::size_t>(id)] = kNone;
  stats_.points_erased += static_cast<std::uint64_t>(ids.size());
  ++stats_.update_batches;
  ++epoch_;  // first mutation, same rationale (and same healthy_ window) as insert()
  healthy_ = false;
  PANDORA_FAILPOINT("dyn.erase.repair");

  const index_t n_new = n_old - static_cast<index_t>(ids.size());
  if (n_new == 0) {
    points_ = std::make_unique<spatial::PointSet>();
    id_of_slot_.clear();
    edges_.clear();
    sorted_ = {};
    tree_.reset();
    indexed_ = 0;
    replay_dendrogram();
    healthy_ = true;
    erase_metric().observe(timer.seconds());
    return;
  }

  // Stable slot compaction: survivors keep their relative order, so the
  // rebuilt-from-scratch reference over points() sees the same point order.
  auto remap_lease = workspace.take_uninit<index_t>(n_old);
  const std::span<index_t> remap = remap_lease.span();
  const int dim = points_->dim();
  index_t next_slot = 0;
  for (index_t s = 0; s < n_old; ++s) {
    if (alive[static_cast<std::size_t>(s)] == 0) {
      remap[static_cast<std::size_t>(s)] = kNone;
      continue;
    }
    const index_t d = next_slot++;
    remap[static_cast<std::size_t>(s)] = d;
    if (d != s) {
      std::copy_n(points_->coords().begin() +
                      static_cast<std::size_t>(s) * static_cast<std::size_t>(dim),
                  static_cast<std::size_t>(dim),
                  points_->coords().begin() +
                      static_cast<std::size_t>(d) * static_cast<std::size_t>(dim));
      id_of_slot_[static_cast<std::size_t>(d)] = id_of_slot_[static_cast<std::size_t>(s)];
    }
  }
  points_->coords().resize(static_cast<std::size_t>(n_new) * static_cast<std::size_t>(dim));
  id_of_slot_.resize(static_cast<std::size_t>(n_new));
  for (index_t s = 0; s < n_new; ++s)
    slot_of_id_[static_cast<std::size_t>(id_of_slot_[static_cast<std::size_t>(s)])] = s;

  // Compaction moved the indexed coordinates: rebuild the kd index now (it
  // is also what re-joining the splinters queries).
  rebuild_index();

  // Splinter: every surviving edge provably stays in the new EMST (erasing
  // points removes paths, never adds them), so the survivors' components
  // only need minimum-weight re-joining — the component-restricted Borůvka
  // entry of spatial::emst.
  const auto e_old = static_cast<size_type>(edges_.size());
  std::vector<char> keep(static_cast<std::size_t>(e_old), 0);
  graph::ConcurrentUnionFind uf(n_new);
  for (size_type i = 0; i < e_old; ++i) {
    graph::WeightedEdge& e = edges_[static_cast<std::size_t>(i)];
    const index_t u = remap[static_cast<std::size_t>(e.u)];
    const index_t v = remap[static_cast<std::size_t>(e.v)];
    if (u == kNone || v == kNone) continue;
    keep[static_cast<std::size_t>(i)] = 1;
    uf.unite(u, v);
  }
  graph::EdgeList added = spatial::join_components_emst(*exec_, *points_, *tree_, uf);

  finish_update(keep, added, remap, n_new);
  healthy_ = true;
  erase_metric().observe(timer.seconds());
}

void DynamicClustering::finish_update(std::span<const char> keep, const graph::EdgeList& added,
                                      std::span<const index_t> vertex_remap,
                                      index_t num_vertices) {
  // Maintained list: survivors in maintained order (remapped), then the
  // delta — exactly the order merge_sorted_edges_delta renumbers against.
  edges_scratch_.clear();
  edges_scratch_.reserve(static_cast<std::size_t>(num_vertices));
  std::uint64_t kept = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (keep[i] == 0) continue;
    graph::WeightedEdge e = edges_[i];
    if (!vertex_remap.empty()) {
      e.u = vertex_remap[static_cast<std::size_t>(e.u)];
      e.v = vertex_remap[static_cast<std::size_t>(e.v)];
    }
    edges_scratch_.push_back(e);
    ++kept;
  }
  stats_.edges_removed += edges_.size() - kept;
  stats_.edges_added += added.size();
  edges_scratch_.insert(edges_scratch_.end(), added.begin(), added.end());

  merge_sorted_edges_delta(*exec_, sorted_, keep, added, vertex_remap, num_vertices,
                           sorted_scratch_);
  std::swap(sorted_, sorted_scratch_);
  std::swap(edges_, edges_scratch_);

  replay_dendrogram();
}

hdbscan::HdbscanResult DynamicClustering::hdbscan(const hdbscan::HdbscanOptions& options) const {
  PANDORA_EXPECT(healthy_, "stream poisoned by an earlier failed update");
  PANDORA_EXPECT(points_->size() > 0, "hdbscan needs at least one point");
  return pandora::hdbscan::hdbscan(*exec_, *points_, options, points_fingerprint());
}

ArtifactBundle DynamicClustering::capture_artifacts() const {
  PANDORA_EXPECT(healthy_, "stream poisoned by an earlier failed update");
  ArtifactBundle bundle;
  bundle.epoch = epoch_;
  bundle.fingerprint = points_fingerprint();
  bundle.points = std::make_shared<const spatial::PointSet>(*points_);
  bundle.ids = std::make_shared<const std::vector<index_t>>(id_of_slot_);
  bundle.emst = std::make_shared<const graph::EdgeList>(edges_);
  bundle.sorted_edges = std::make_shared<const dendrogram::SortedEdges>(sorted_);
  bundle.dendrogram = std::make_shared<const dendrogram::Dendrogram>(dendrogram_);
  bundle.expansion = options_.expansion;
  return bundle;
}

void DynamicClustering::restore(const ArtifactBundle& bundle) {
  PANDORA_EXPECT(bundle.points != nullptr && bundle.ids != nullptr && bundle.emst != nullptr &&
                     bundle.sorted_edges != nullptr && bundle.dendrogram != nullptr,
                 "restore: incomplete artifact bundle");
  PANDORA_EXPECT(bundle.ids->size() == static_cast<std::size_t>(bundle.points->size()),
                 "restore: bundle id map does not match its point set");

  *points_ = *bundle.points;
  id_of_slot_ = *bundle.ids;
  edges_ = *bundle.emst;
  sorted_ = *bundle.sorted_edges;
  dendrogram_ = *bundle.dendrogram;
  options_.expansion = bundle.expansion;

  // Rebuild the inverse id map.  Ids issued after the bundle was captured
  // stay burned: next_id_ never decreases, so a recovered stream cannot hand
  // out an id that some caller already holds for a (now rolled-back) point.
  index_t max_id = -1;
  for (const index_t id : id_of_slot_) max_id = std::max(max_id, id);
  next_id_ = std::max(next_id_, max_id + 1);
  slot_of_id_.assign(static_cast<std::size_t>(next_id_), kNone);
  for (index_t s = 0; s < static_cast<index_t>(id_of_slot_.size()); ++s)
    slot_of_id_[static_cast<std::size_t>(id_of_slot_[static_cast<std::size_t>(s)])] = s;

  if (points_->size() > 0) {
    rebuild_index();
  } else {
    tree_.reset();
    indexed_ = 0;
  }

  // A fresh epoch, never the bundle's: the failed update already burned
  // epoch numbers, and reusing one would let the shared ArtifactCache serve
  // artifacts computed against the half-updated state.
  ++epoch_;
  healthy_ = true;
}

}  // namespace pandora::dyn
