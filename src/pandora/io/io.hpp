#pragma once

#include <iosfwd>
#include <string>

#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/spatial/point_set.hpp"

/// Serialization: binary round-tripping for dendrograms and MSTs (so the
/// expensive EMST/dendrogram stages can be checkpointed between tool runs)
/// and text interchange (linkage CSV for SciPy-side analysis, XYZ-style CSV
/// point clouds).  All binary formats carry a magic tag and explicit sizes
/// and reject malformed input with std::invalid_argument.
namespace pandora::io {

/// Writes/reads a dendrogram in the library's binary container.
void save_dendrogram(std::ostream& out, const dendrogram::Dendrogram& dendrogram);
[[nodiscard]] dendrogram::Dendrogram load_dendrogram(std::istream& in);
void save_dendrogram_file(const std::string& path, const dendrogram::Dendrogram& dendrogram);
[[nodiscard]] dendrogram::Dendrogram load_dendrogram_file(const std::string& path);

/// Writes/reads a weighted edge list (an MST checkpoint).
void save_edges(std::ostream& out, const graph::EdgeList& edges, index_t num_vertices);
[[nodiscard]] std::pair<graph::EdgeList, index_t> load_edges(std::istream& in);

/// SciPy-compatible linkage CSV: one "id_a,id_b,distance,size" row per merge.
void write_linkage_csv(std::ostream& out, const dendrogram::Dendrogram& dendrogram);

/// Comma-separated point cloud, one point per row.
void write_points_csv(std::ostream& out, const spatial::PointSet& points);
[[nodiscard]] spatial::PointSet read_points_csv(std::istream& in);

}  // namespace pandora::io
