#include "pandora/io/io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "pandora/common/expect.hpp"
#include "pandora/dendrogram/analysis.hpp"

namespace pandora::io {

namespace {

constexpr std::uint64_t kDendrogramMagic = 0x50414e444f524131ull;  // "PANDORA1"
constexpr std::uint64_t kEdgesMagic = 0x50414e4544474553ull;  // "PANEDGES"

template <class T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  PANDORA_EXPECT(static_cast<bool>(in), "truncated stream");
  return value;
}

template <class T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <class T>
std::vector<T> read_vector(std::istream& in, std::uint64_t max_expected) {
  const auto count = read_pod<std::uint64_t>(in);
  PANDORA_EXPECT(count <= max_expected, "corrupt stream: implausible array size");
  std::vector<T> v(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  PANDORA_EXPECT(static_cast<bool>(in), "truncated stream");
  return v;
}

}  // namespace

void save_dendrogram(std::ostream& out, const dendrogram::Dendrogram& d) {
  write_pod(out, kDendrogramMagic);
  write_pod(out, static_cast<std::int64_t>(d.num_edges));
  write_pod(out, static_cast<std::int64_t>(d.num_vertices));
  write_vector(out, d.parent);
  write_vector(out, d.weight);
  write_vector(out, d.edge_order);
  PANDORA_EXPECT(static_cast<bool>(out), "write failed");
}

dendrogram::Dendrogram load_dendrogram(std::istream& in) {
  PANDORA_EXPECT(read_pod<std::uint64_t>(in) == kDendrogramMagic,
                 "not a pandora dendrogram stream");
  dendrogram::Dendrogram d;
  d.num_edges = static_cast<index_t>(read_pod<std::int64_t>(in));
  d.num_vertices = static_cast<index_t>(read_pod<std::int64_t>(in));
  PANDORA_EXPECT(d.num_edges >= 0 && d.num_vertices >= 0, "corrupt header");
  const std::uint64_t nodes = static_cast<std::uint64_t>(d.num_edges) +
                              static_cast<std::uint64_t>(d.num_vertices);
  d.parent = read_vector<index_t>(in, nodes);
  d.weight = read_vector<double>(in, static_cast<std::uint64_t>(d.num_edges));
  d.edge_order = read_vector<index_t>(in, static_cast<std::uint64_t>(d.num_edges));
  PANDORA_EXPECT(d.parent.size() == nodes, "corrupt stream: parent size mismatch");
  dendrogram::validate_dendrogram(d);
  return d;
}

void save_dendrogram_file(const std::string& path, const dendrogram::Dendrogram& d) {
  std::ofstream out(path, std::ios::binary);
  PANDORA_EXPECT(out.is_open(), "cannot open " + path);
  save_dendrogram(out, d);
}

dendrogram::Dendrogram load_dendrogram_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PANDORA_EXPECT(in.is_open(), "cannot open " + path);
  return load_dendrogram(in);
}

void save_edges(std::ostream& out, const graph::EdgeList& edges, index_t num_vertices) {
  write_pod(out, kEdgesMagic);
  write_pod(out, static_cast<std::int64_t>(num_vertices));
  write_pod(out, static_cast<std::uint64_t>(edges.size()));
  for (const auto& e : edges) {
    write_pod(out, e.u);
    write_pod(out, e.v);
    write_pod(out, e.weight);
  }
  PANDORA_EXPECT(static_cast<bool>(out), "write failed");
}

std::pair<graph::EdgeList, index_t> load_edges(std::istream& in) {
  PANDORA_EXPECT(read_pod<std::uint64_t>(in) == kEdgesMagic, "not a pandora edge stream");
  const auto num_vertices = static_cast<index_t>(read_pod<std::int64_t>(in));
  const auto count = read_pod<std::uint64_t>(in);
  PANDORA_EXPECT(num_vertices >= 0, "corrupt header");
  graph::EdgeList edges;
  edges.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    graph::WeightedEdge e;
    e.u = read_pod<index_t>(in);
    e.v = read_pod<index_t>(in);
    e.weight = read_pod<double>(in);
    edges.push_back(e);
  }
  return {std::move(edges), num_vertices};
}

void write_linkage_csv(std::ostream& out, const dendrogram::Dendrogram& d) {
  out << "cluster_a,cluster_b,distance,size\n";
  for (const auto& row : dendrogram::linkage_matrix(d))
    out << row.cluster_a << ',' << row.cluster_b << ',' << row.distance << ',' << row.size
        << '\n';
}

void write_points_csv(std::ostream& out, const spatial::PointSet& points) {
  for (index_t i = 0; i < points.size(); ++i) {
    for (int d = 0; d < points.dim(); ++d) {
      if (d) out << ',';
      out << points.at(i, d);
    }
    out << '\n';
  }
}

spatial::PointSet read_points_csv(std::istream& in) {
  std::vector<double> coords;
  int dim = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    int this_dim = 0;
    while (std::getline(row, cell, ',')) {
      coords.push_back(std::stod(cell));
      ++this_dim;
    }
    if (dim == 0) dim = this_dim;
    PANDORA_EXPECT(this_dim == dim, "ragged CSV: inconsistent column count");
  }
  PANDORA_EXPECT(dim > 0, "empty CSV");
  spatial::PointSet points(dim, static_cast<index_t>(coords.size() / static_cast<std::size_t>(dim)));
  points.coords() = std::move(coords);
  return points;
}

}  // namespace pandora::io
