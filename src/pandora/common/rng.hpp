#pragma once

#include <cmath>
#include <cstdint>

namespace pandora {

/// Deterministic, seedable pseudo-random generator (xoshiro256** with a
/// splitmix64-seeded state).  The standard library engines are not guaranteed
/// to produce identical streams across implementations; experiments must be
/// bit-reproducible, so the library carries its own generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).  n must be positive.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (one value per call; simple and exact
  /// enough for dataset generation).
  double normal() {
    double u1 = next_double();
    double u2 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace pandora
