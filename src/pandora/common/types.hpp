#pragma once

#include <cstdint>

/// Fundamental index and size types used across the library.
///
/// Dendrogram construction addresses individual edges and vertices of a
/// minimum spanning tree; 32-bit signed indices cover the problem sizes the
/// paper evaluates (up to 497M points) while halving the memory traffic of
/// the sort/scatter kernels relative to 64-bit indices.
namespace pandora {

/// Index of a vertex, edge, or dendrogram node. -1 denotes "none".
using index_t = std::int32_t;

/// Sizes and loop bounds (kept wide to make overflow impossible in products).
using size_type = std::int64_t;

/// Sentinel for "no index" (absent parent, unset slot, ...).
inline constexpr index_t kNone = -1;

}  // namespace pandora
