#pragma once

#include <chrono>
#include <map>
#include <string>

namespace pandora {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the
/// phase instrumentation inside the dendrogram driver.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase timings (sort, contraction, expansion, ...).
/// The paper reports per-phase breakdowns in Figures 12 and 13; every
/// algorithm driver fills one of these so benches can print them directly.
class PhaseTimes {
 public:
  void add(const std::string& phase, double seconds) { seconds_[phase] += seconds; }

  [[nodiscard]] double get(const std::string& phase) const {
    auto it = seconds_.find(phase);
    return it == seconds_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double total() const {
    double t = 0;
    for (const auto& [_, s] : seconds_) t += s;
    return t;
  }

  [[nodiscard]] const std::map<std::string, double>& all() const { return seconds_; }

 private:
  std::map<std::string, double> seconds_;
};

/// Runs `f()` and records its duration under `phase`.
template <class F>
void timed_phase(PhaseTimes& times, const std::string& phase, F&& f) {
  Timer t;
  f();
  times.add(phase, t.seconds());
}

}  // namespace pandora
