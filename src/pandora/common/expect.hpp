#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// Precondition checking.
///
/// Following the C++ Core Guidelines (I.5, I.6), public entry points validate
/// their preconditions and report violations by throwing std::invalid_argument
/// with a message naming the failed expectation.  Internal hot loops use plain
/// assertions compiled out in release builds; these macros are for API
/// boundaries where malformed input (disconnected "trees", NaN weights, ...)
/// must be rejected deterministically.
namespace pandora::detail {

[[noreturn]] inline void throw_expect_failure(const char* cond, const char* file, int line,
                                              const std::string& message) {
  std::ostringstream os;
  os << "pandora: precondition violated: " << cond;
  if (!message.empty()) os << " (" << message << ")";
  os << " at " << file << ":" << line;
  throw std::invalid_argument(os.str());
}

}  // namespace pandora::detail

#define PANDORA_EXPECT(cond, message)                                                \
  do {                                                                               \
    if (!(cond)) ::pandora::detail::throw_expect_failure(#cond, __FILE__, __LINE__,  \
                                                         (message));                 \
  } while (false)
