#include "pandora/hdbscan/condensed_tree.hpp"

#include "pandora/common/timer.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "pandora/common/expect.hpp"
#include "pandora/dendrogram/analysis.hpp"

namespace pandora::hdbscan {

namespace {

using dendrogram::Dendrogram;

/// 1/distance with a floor so zero-weight edges stay finite.
double to_lambda(double weight) { return 1.0 / std::max(weight, 1e-300); }

/// Per-edge child slots: up to two edge children and two vertex children.
struct Children {
  std::vector<index_t> edge_a, edge_b;      // edge children (kNone if absent)
  std::vector<index_t> vertex_a, vertex_b;  // vertex children (kNone if absent)
};

Children collect_children(const Dendrogram& d) {
  Children ch;
  const auto n = static_cast<std::size_t>(d.num_edges);
  ch.edge_a.assign(n, kNone);
  ch.edge_b.assign(n, kNone);
  ch.vertex_a.assign(n, kNone);
  ch.vertex_b.assign(n, kNone);
  for (index_t e = 1; e < d.num_edges; ++e) {
    const auto p = static_cast<std::size_t>(d.parent[static_cast<std::size_t>(e)]);
    (ch.edge_a[p] == kNone ? ch.edge_a[p] : ch.edge_b[p]) = e;
  }
  for (index_t v = 0; v < d.num_vertices; ++v) {
    const index_t pe = d.parent[static_cast<std::size_t>(d.vertex_node(v))];
    if (pe == kNone) continue;
    const auto p = static_cast<std::size_t>(pe);
    (ch.vertex_a[p] == kNone ? ch.vertex_a[p] : ch.vertex_b[p]) = v;
  }
  return ch;
}

}  // namespace

CondensedTree build_condensed_tree(const Dendrogram& d, index_t min_cluster_size) {
  PANDORA_EXPECT(min_cluster_size >= 1, "min_cluster_size must be positive");
  const index_t n = d.num_edges;
  const index_t nv = d.num_vertices;

  CondensedTree tree;
  tree.point_cluster.assign(static_cast<std::size_t>(nv), 0);
  tree.point_lambda.assign(static_cast<std::size_t>(nv), 0.0);
  tree.clusters.push_back({kNone, 0.0, 0.0, nv, 0.0, kNone, kNone});
  if (n == 0) return tree;  // all points in the root cluster

  const std::vector<index_t> size = dendrogram::subtree_point_counts(d);

  const Children ch = collect_children(d);

  // Assigns every point in the subtree under `edge` to `cluster` at `lambda`.
  auto assign_subtree = [&](index_t edge, index_t cluster, double lambda,
                            std::vector<index_t>& stack) {
    stack.clear();
    stack.push_back(edge);
    while (!stack.empty()) {
      const auto e = static_cast<std::size_t>(stack.back());
      stack.pop_back();
      for (const index_t v : {ch.vertex_a[e], ch.vertex_b[e]}) {
        if (v == kNone) continue;
        tree.point_cluster[static_cast<std::size_t>(v)] = cluster;
        tree.point_lambda[static_cast<std::size_t>(v)] = lambda;
      }
      for (const index_t f : {ch.edge_a[e], ch.edge_b[e]})
        if (f != kNone) stack.push_back(f);
    }
  };

  struct Item {
    index_t edge;
    index_t cluster;
  };
  std::vector<Item> work{{0, 0}};
  std::vector<index_t> scratch;

  auto shed = [&](index_t cluster, index_t count, double lambda) {
    tree.clusters[static_cast<std::size_t>(cluster)].stability +=
        static_cast<double>(count) *
        (lambda - tree.clusters[static_cast<std::size_t>(cluster)].birth_lambda);
  };

  while (!work.empty()) {
    const auto [e, c] = work.back();
    work.pop_back();
    const double lambda = to_lambda(d.weight[static_cast<std::size_t>(e)]);
    const auto ei = static_cast<std::size_t>(e);

    // The two sides of the split at edge e: (child node, point count).
    struct Side {
      index_t edge = kNone;    // edge child, or
      index_t vertex = kNone;  // vertex child
      index_t count = 0;
    };
    Side sides[2];
    int s = 0;
    for (const index_t f : {ch.edge_a[ei], ch.edge_b[ei]})
      if (f != kNone) sides[s++] = {f, kNone, size[static_cast<std::size_t>(f)]};
    for (const index_t v : {ch.vertex_a[ei], ch.vertex_b[ei]})
      if (v != kNone) sides[s++] = {kNone, v, 1};
    PANDORA_EXPECT(s == 2, "dendrogram edge without exactly two children");

    const bool big0 = sides[0].count >= min_cluster_size;
    const bool big1 = sides[1].count >= min_cluster_size;

    if (big0 && big1) {
      // True split: cluster c dies here; both sides become new clusters.
      auto& cluster = tree.clusters[static_cast<std::size_t>(c)];
      cluster.death_lambda = lambda;
      shed(c, sides[0].count + sides[1].count, lambda);
      index_t child_ids[2];
      for (int k = 0; k < 2; ++k) {
        const auto id = static_cast<index_t>(tree.clusters.size());
        child_ids[k] = id;
        tree.clusters.push_back({c, lambda, lambda, sides[k].count, 0.0, kNone, kNone});
        if (sides[k].edge != kNone) {
          work.push_back({sides[k].edge, id});
        } else {
          // A singleton true-split side (only possible with mcs == 1):
          // a leaf cluster with zero lifetime.
          tree.point_cluster[static_cast<std::size_t>(sides[k].vertex)] = id;
          tree.point_lambda[static_cast<std::size_t>(sides[k].vertex)] = lambda;
        }
      }
      tree.clusters[static_cast<std::size_t>(c)].child_a = child_ids[0];
      tree.clusters[static_cast<std::size_t>(c)].child_b = child_ids[1];
    } else if (!big0 && !big1) {
      // Both sides too small: the cluster dissolves; everything below e
      // leaves at this lambda.
      tree.clusters[static_cast<std::size_t>(c)].death_lambda = lambda;
      shed(c, sides[0].count + sides[1].count, lambda);
      for (const Side& side : sides) {
        if (side.edge != kNone) {
          assign_subtree(side.edge, c, lambda, scratch);
        } else {
          tree.point_cluster[static_cast<std::size_t>(side.vertex)] = c;
          tree.point_lambda[static_cast<std::size_t>(side.vertex)] = lambda;
        }
      }
    } else {
      // One side sheds; the cluster continues through the big side.
      const Side& small = big0 ? sides[1] : sides[0];
      const Side& big = big0 ? sides[0] : sides[1];
      shed(c, small.count, lambda);
      if (small.edge != kNone) {
        assign_subtree(small.edge, c, lambda, scratch);
      } else {
        tree.point_cluster[static_cast<std::size_t>(small.vertex)] = c;
        tree.point_lambda[static_cast<std::size_t>(small.vertex)] = lambda;
      }
      // A big vertex side can only occur with mcs == 1, which the true-split
      // branch already covers; here big.edge is an edge.
      work.push_back({big.edge, c});
    }
  }
  return tree;
}

FlatClustering extract_clusters(const CondensedTree& tree, const ExtractOptions& options) {
  const auto nc = static_cast<index_t>(tree.clusters.size());
  const bool allow_single_cluster = options.allow_single_cluster;
  std::vector<char> selected(static_cast<std::size_t>(nc), 0);

  if (options.method == ClusterSelectionMethod::leaf) {
    for (index_t c = 0; c < nc; ++c)
      if (tree.clusters[static_cast<std::size_t>(c)].child_a == kNone)
        selected[static_cast<std::size_t>(c)] = 1;
  } else {
    // Children have larger ids than parents (DFS creation order), so a
    // reverse sweep sees children first — the excess-of-mass recursion.
    std::vector<double> subtree_stability(static_cast<std::size_t>(nc), 0.0);
    for (index_t c = nc - 1; c >= 0; --c) {
      const auto& cluster = tree.clusters[static_cast<std::size_t>(c)];
      if (cluster.child_a == kNone) {
        selected[static_cast<std::size_t>(c)] = 1;
        subtree_stability[static_cast<std::size_t>(c)] = cluster.stability;
        continue;
      }
      const double child_sum = subtree_stability[static_cast<std::size_t>(cluster.child_a)] +
                               subtree_stability[static_cast<std::size_t>(cluster.child_b)];
      if (cluster.stability > child_sum && (c != 0 || allow_single_cluster)) {
        selected[static_cast<std::size_t>(c)] = 1;
        subtree_stability[static_cast<std::size_t>(c)] = cluster.stability;
      } else {
        subtree_stability[static_cast<std::size_t>(c)] = child_sum;
      }
    }
  }
  if (!allow_single_cluster) selected[0] = 0;

  if (options.selection_epsilon > 0.0) {
    // Epsilon filter: lift clusters born below the distance threshold to
    // their deepest eligible ancestor.  birth distance = 1 / birth_lambda.
    auto birth_distance = [&](index_t c) {
      const double lambda = tree.clusters[static_cast<std::size_t>(c)].birth_lambda;
      return lambda > 0 ? 1.0 / lambda : std::numeric_limits<double>::infinity();
    };
    std::vector<char> lifted(static_cast<std::size_t>(nc), 0);
    for (index_t c = 0; c < nc; ++c) {
      if (!selected[static_cast<std::size_t>(c)]) continue;
      if (birth_distance(c) >= options.selection_epsilon) {
        lifted[static_cast<std::size_t>(c)] = 1;
        continue;
      }
      index_t cur = c;
      index_t last_non_root = c;
      while (tree.clusters[static_cast<std::size_t>(cur)].parent != kNone &&
             birth_distance(cur) < options.selection_epsilon) {
        last_non_root = cur;
        cur = tree.clusters[static_cast<std::size_t>(cur)].parent;
      }
      if (cur == 0 && !allow_single_cluster) cur = last_non_root;
      lifted[static_cast<std::size_t>(cur)] = 1;
    }
    selected.swap(lifted);
    if (!allow_single_cluster) selected[0] = 0;
  }

  // A cluster is finally selected iff selected and no selected proper
  // ancestor; top-down sweep.
  std::vector<char> blocked(static_cast<std::size_t>(nc), 0);
  FlatClustering flat;
  std::vector<index_t> dense(static_cast<std::size_t>(nc), kNone);
  for (index_t c = 0; c < nc; ++c) {
    const auto& cluster = tree.clusters[static_cast<std::size_t>(c)];
    if (cluster.parent != kNone) {
      blocked[static_cast<std::size_t>(c)] =
          blocked[static_cast<std::size_t>(cluster.parent)] |
          selected[static_cast<std::size_t>(cluster.parent)];
    }
    if (selected[static_cast<std::size_t>(c)] && !blocked[static_cast<std::size_t>(c)]) {
      dense[static_cast<std::size_t>(c)] = flat.num_clusters++;
      flat.selected_clusters.push_back(c);
    }
  }

  flat.labels.assign(tree.point_cluster.size(), kNone);
  for (std::size_t p = 0; p < tree.point_cluster.size(); ++p) {
    index_t c = tree.point_cluster[p];
    while (c != kNone && dense[static_cast<std::size_t>(c)] == kNone)
      c = tree.clusters[static_cast<std::size_t>(c)].parent;
    if (c != kNone) flat.labels[p] = dense[static_cast<std::size_t>(c)];
  }
  return flat;
}

FlatClustering extract_clusters(const CondensedTree& tree, bool allow_single_cluster) {
  ExtractOptions options;
  options.allow_single_cluster = allow_single_cluster;
  return extract_clusters(tree, options);
}

CondensedTree build_condensed_tree(const exec::Executor& exec,
                                   const dendrogram::Dendrogram& dendrogram,
                                   index_t min_cluster_size) {
  Timer timer;
  CondensedTree tree = build_condensed_tree(dendrogram, min_cluster_size);
  exec.record_phase("condense", timer.seconds());
  return tree;
}

}  // namespace pandora::hdbscan
