#include "pandora/hdbscan/hdbscan.hpp"

#include <optional>

#include "pandora/common/expect.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

namespace pandora::hdbscan {

namespace {

FlatClustering extract_with(const CondensedTree& tree, const HdbscanOptions& options) {
  ExtractOptions extract_options;
  extract_options.method = options.cluster_selection_method;
  extract_options.allow_single_cluster = options.allow_single_cluster;
  extract_options.selection_epsilon = options.cluster_selection_epsilon;
  return extract_clusters(tree, extract_options);
}

}  // namespace

namespace {

/// The pipeline body behind hdbscan() and the sweep front doors; a caller
/// that already hashed the point set passes the fingerprint so one query
/// hashes the data at most once (and an mpts sweep, once for all values).
HdbscanResult hdbscan_with_fingerprint(const exec::Executor& exec,
                                       const spatial::PointSet& points,
                                       const HdbscanOptions& options,
                                       std::optional<std::uint64_t> points_fp) {
  PANDORA_EXPECT(points.size() > 0, "need at least one point");
  HdbscanResult result;
  // Capture every phase in result.times, chaining to any profiler the caller
  // attached to the executor (so both observers see the same breakdown).
  exec::ScopedPhaseTimes scope(exec, &result.times);

  // The kd-tree and per-mpts core distances go through the Executor's
  // ArtifactCache: repeated queries against one point set (and mpts sweeps,
  // for the tree) replay instead of rebuilding.  With caching off the plain
  // paths run — no fingerprint hashed, no wrapper copied — so the phases
  // below time exactly the real work.
  if (exec.artifact_caching() && !points_fp)
    points_fp = spatial::point_set_fingerprint(exec, points);

  Timer timer;
  const std::shared_ptr<const spatial::KdTree> tree =
      spatial::kdtree_cached(exec, points, 32, points_fp);
  exec.record_phase("tree_build", timer.seconds());

  timer.reset();
  if (exec.artifact_caching()) {
    const std::shared_ptr<const std::vector<double>> core =
        core_distances_cached(exec, points, *tree, options.min_pts, points_fp);
    result.core_distances = *core;
  } else {
    result.core_distances = core_distances(exec, points, *tree, options.min_pts);
  }
  exec.record_phase("core_distance", timer.seconds());

  timer.reset();
  if (exec.artifact_caching()) {
    const std::shared_ptr<const graph::EdgeList> mst = spatial::mutual_reachability_mst_cached(
        exec, points, *tree, result.core_distances, options.min_pts, points_fp);
    // Copy-out is the price of keeping HdbscanResult::mst a plain value: one
    // O(E) memcpy, well under a millesimal of the Borůvka build it replaces
    // on a warm hit.
    result.mst = *mst;
  } else {
    result.mst = spatial::mutual_reachability_mst(exec, points, *tree, result.core_distances);
  }
  exec.record_phase("mst", timer.seconds());

  if (options.dendrogram_algorithm == DendrogramAlgorithm::pandora) {
    result.dendrogram = dendrogram::pandora_dendrogram(exec, result.mst, points.size());
  } else {
    result.dendrogram = dendrogram::union_find_dendrogram(exec, result.mst, points.size());
  }

  result.condensed_tree =
      build_condensed_tree(exec, result.dendrogram, options.min_cluster_size);

  timer.reset();
  FlatClustering flat = extract_with(result.condensed_tree, options);
  result.labels = std::move(flat.labels);
  result.num_clusters = flat.num_clusters;
  exec.record_phase("extract", timer.seconds());
  return result;
}

}  // namespace

HdbscanResult hdbscan(const exec::Executor& exec, const spatial::PointSet& points,
                      const HdbscanOptions& options,
                      std::optional<std::uint64_t> points_fingerprint) {
  return hdbscan_with_fingerprint(exec, points, options, points_fingerprint);
}

MinClusterSizeSweep hdbscan_sweep_min_cluster_size(const exec::Executor& exec,
                                                   const spatial::PointSet& points,
                                                   std::span<const index_t> min_cluster_sizes,
                                                   const HdbscanOptions& base,
                                                   std::optional<std::uint64_t> points_fingerprint) {
  PANDORA_EXPECT(points.size() > 0, "need at least one point");
  MinClusterSizeSweep sweep;

  // Shared prefix, computed once per sweep call and replayed from the
  // ArtifactCache across calls: min_cluster_size touches nothing above the
  // condensed tree, so repeated sweeps skip the kd-tree build, the core
  // distances AND the Borůvka EMST (the cached-EMST ROADMAP follow-up).
  std::optional<std::uint64_t> points_fp = points_fingerprint;
  if (exec.artifact_caching() && !points_fp)
    points_fp = spatial::point_set_fingerprint(exec, points);
  const std::shared_ptr<const spatial::KdTree> tree =
      spatial::kdtree_cached(exec, points, 32, points_fp);
  if (exec.artifact_caching()) {
    const std::shared_ptr<const std::vector<double>> core =
        core_distances_cached(exec, points, *tree, base.min_pts, points_fp);
    sweep.core_distances = *core;
    const std::shared_ptr<const graph::EdgeList> mst = spatial::mutual_reachability_mst_cached(
        exec, points, *tree, sweep.core_distances, base.min_pts, points_fp);
    sweep.mst = *mst;
  } else {
    sweep.core_distances = core_distances(exec, points, *tree, base.min_pts);
    sweep.mst = spatial::mutual_reachability_mst(exec, points, *tree, sweep.core_distances);
  }

  if (base.dendrogram_algorithm == DendrogramAlgorithm::pandora) {
    sweep.dendrogram = dendrogram::pandora_dendrogram_cached(exec, sweep.mst, points.size());
  } else {
    sweep.dendrogram = std::make_shared<const dendrogram::Dendrogram>(
        dendrogram::union_find_dendrogram(exec, sweep.mst, points.size()));
  }

  sweep.entries.reserve(min_cluster_sizes.size());
  for (const index_t min_cluster_size : min_cluster_sizes) {
    MinClusterSizeSweep::Entry entry;
    entry.min_cluster_size = min_cluster_size;
    entry.condensed_tree = build_condensed_tree(exec, *sweep.dendrogram, min_cluster_size);
    HdbscanOptions options = base;
    options.min_cluster_size = min_cluster_size;
    FlatClustering flat = extract_with(entry.condensed_tree, options);
    entry.labels = std::move(flat.labels);
    entry.num_clusters = flat.num_clusters;
    sweep.entries.push_back(std::move(entry));
  }
  return sweep;
}

std::vector<HdbscanResult> hdbscan_sweep_min_pts(const exec::Executor& exec,
                                                 const spatial::PointSet& points,
                                                 std::span<const int> min_pts_values,
                                                 const HdbscanOptions& base,
                                                 std::optional<std::uint64_t> points_fingerprint) {
  std::vector<HdbscanResult> results;
  results.reserve(min_pts_values.size());
  // One content hash serves the whole sweep; per value, the kd-tree replays
  // from the cache after the first, while the core distances and EMST depend
  // on mpts and are rebuilt (under distinct, never-aliasing cache keys for
  // the former).
  std::optional<std::uint64_t> points_fp = points_fingerprint;
  if (exec.artifact_caching() && points.size() > 0 && !points_fp)
    points_fp = spatial::point_set_fingerprint(exec, points);
  for (const int min_pts : min_pts_values) {
    HdbscanOptions options = base;
    options.min_pts = min_pts;
    results.push_back(hdbscan_with_fingerprint(exec, points, options, points_fp));
  }
  return results;
}

}  // namespace pandora::hdbscan
