#include "pandora/hdbscan/hdbscan.hpp"

#include "pandora/common/expect.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

namespace pandora::hdbscan {

HdbscanResult hdbscan(const spatial::PointSet& points, const HdbscanOptions& options) {
  PANDORA_EXPECT(points.size() > 0, "need at least one point");
  HdbscanResult result;
  const exec::Space space = options.space;

  Timer timer;
  spatial::KdTree tree(points);
  result.times.add("tree_build", timer.seconds());

  timer.reset();
  result.core_distances = core_distances(space, points, tree, options.min_pts);
  result.times.add("core_distance", timer.seconds());

  timer.reset();
  result.mst = spatial::mutual_reachability_mst(space, points, tree, result.core_distances);
  result.times.add("mst", timer.seconds());

  if (options.dendrogram_algorithm == DendrogramAlgorithm::pandora) {
    dendrogram::PandoraOptions pandora_options;
    pandora_options.space = space;
    result.dendrogram = dendrogram::pandora_dendrogram(result.mst, points.size(),
                                                       pandora_options, &result.times);
  } else {
    result.dendrogram = dendrogram::union_find_dendrogram(result.mst, points.size(), space,
                                                          &result.times);
  }

  timer.reset();
  result.condensed_tree = build_condensed_tree(result.dendrogram, options.min_cluster_size);
  result.times.add("condense", timer.seconds());

  timer.reset();
  ExtractOptions extract_options;
  extract_options.method = options.cluster_selection_method;
  extract_options.allow_single_cluster = options.allow_single_cluster;
  extract_options.selection_epsilon = options.cluster_selection_epsilon;
  FlatClustering flat = extract_clusters(result.condensed_tree, extract_options);
  result.labels = std::move(flat.labels);
  result.num_clusters = flat.num_clusters;
  result.times.add("extract", timer.seconds());
  return result;
}

}  // namespace pandora::hdbscan
