#include "pandora/hdbscan/hdbscan.hpp"

#include "pandora/common/expect.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/dendrogram/union_find_dendrogram.hpp"
#include "pandora/hdbscan/core_distance.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

namespace pandora::hdbscan {

HdbscanResult hdbscan(const exec::Executor& exec, const spatial::PointSet& points,
                      const HdbscanOptions& options) {
  PANDORA_EXPECT(points.size() > 0, "need at least one point");
  HdbscanResult result;
  // Capture every phase in result.times, chaining to any profiler the caller
  // attached to the executor (so both observers see the same breakdown).
  exec::ScopedPhaseTimes scope(exec, &result.times);

  Timer timer;
  spatial::KdTree tree(points);
  exec.record_phase("tree_build", timer.seconds());

  timer.reset();
  result.core_distances = core_distances(exec, points, tree, options.min_pts);
  exec.record_phase("core_distance", timer.seconds());

  timer.reset();
  result.mst = spatial::mutual_reachability_mst(exec, points, tree, result.core_distances);
  exec.record_phase("mst", timer.seconds());

  if (options.dendrogram_algorithm == DendrogramAlgorithm::pandora) {
    result.dendrogram = dendrogram::pandora_dendrogram(exec, result.mst, points.size());
  } else {
    result.dendrogram = dendrogram::union_find_dendrogram(exec, result.mst, points.size());
  }

  result.condensed_tree =
      build_condensed_tree(exec, result.dendrogram, options.min_cluster_size);

  timer.reset();
  ExtractOptions extract_options;
  extract_options.method = options.cluster_selection_method;
  extract_options.allow_single_cluster = options.allow_single_cluster;
  extract_options.selection_epsilon = options.cluster_selection_epsilon;
  FlatClustering flat = extract_clusters(result.condensed_tree, extract_options);
  result.labels = std::move(flat.labels);
  result.num_clusters = flat.num_clusters;
  exec.record_phase("extract", timer.seconds());
  return result;
}

HdbscanResult hdbscan(const spatial::PointSet& points, const HdbscanOptions& options) {
  return hdbscan(exec::default_executor(options.space), points, options);
}

}  // namespace pandora::hdbscan
