#pragma once

#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/exec/executor.hpp"

namespace pandora::hdbscan {

/// The HDBSCAN* condensed cluster tree (Campello et al. [9]).
///
/// Walking the dendrogram top-down, a cluster persists while splits shed
/// fewer than `min_cluster_size` points; a split into two sufficiently large
/// sides creates two child clusters.  Density is expressed as
/// lambda = 1 / distance.  Semantics implemented here (documented because
/// published implementations differ in minor conventions):
///  * points shed by a too-small split leave the cluster at the split's
///    lambda;
///  * a cluster whose both sides are too small dies at that lambda, all
///    remaining points leaving with it;
///  * stability(C) = sum over member points of (lambda_exit - lambda_birth),
///    where points surviving to a true split exit at the split lambda.
struct CondensedTree {
  struct Cluster {
    index_t parent = kNone;        ///< parent cluster id
    double birth_lambda = 0.0;     ///< lambda at which the cluster appeared
    double death_lambda = 0.0;     ///< lambda of its final split / dissolution
    index_t size = 0;              ///< member points at birth
    double stability = 0.0;
    index_t child_a = kNone;       ///< child clusters (kNone for leaves)
    index_t child_b = kNone;
  };

  std::vector<Cluster> clusters;   ///< clusters[0] is the root
  std::vector<index_t> point_cluster;  ///< deepest cluster each point belonged to
  std::vector<double> point_lambda;    ///< lambda at which the point left it

  [[nodiscard]] index_t num_clusters() const { return static_cast<index_t>(clusters.size()); }
};

/// Builds the condensed tree from a dendrogram.  `min_cluster_size >= 1`;
/// with 1, every split is a true split and the tree mirrors the dendrogram.
[[nodiscard]] CondensedTree build_condensed_tree(const dendrogram::Dendrogram& dendrogram,
                                                 index_t min_cluster_size);

/// Executor overload for API uniformity; the walk is sequential today, but
/// the "condense" phase is recorded with the executor's profiler.
[[nodiscard]] CondensedTree build_condensed_tree(const exec::Executor& exec,
                                                 const dendrogram::Dendrogram& dendrogram,
                                                 index_t min_cluster_size);

/// Flat clusters by excess-of-mass stability optimisation.
struct FlatClustering {
  std::vector<index_t> labels;  ///< per point: cluster label or kNone (noise)
  index_t num_clusters = 0;
  std::vector<index_t> selected_clusters;  ///< condensed-tree cluster ids
};

/// How the flat clusters are picked from the condensed tree.
enum class ClusterSelectionMethod {
  excess_of_mass,  ///< maximise total stability (the HDBSCAN* default)
  leaf,            ///< take the tree's leaves: finest-grained clustering
};

struct ExtractOptions {
  ClusterSelectionMethod method = ClusterSelectionMethod::excess_of_mass;
  bool allow_single_cluster = false;
  /// Minimum birth *distance* for a selected cluster (the epsilon extension
  /// of Malzer & Baum).  A selected cluster born below the threshold is
  /// replaced by its deepest ancestor born at distance >= epsilon; if only
  /// the root qualifies and `allow_single_cluster` is false, the topmost
  /// non-root ancestor on the path is used instead.  0 disables the filter.
  double selection_epsilon = 0.0;
};

/// Selects flat clusters (an antichain of condensed-tree nodes) and labels
/// points.  The root is never selected unless `allow_single_cluster` is set.
[[nodiscard]] FlatClustering extract_clusters(const CondensedTree& tree,
                                              const ExtractOptions& options);

/// Back-compatible convenience: excess-of-mass with no epsilon.
[[nodiscard]] FlatClustering extract_clusters(const CondensedTree& tree,
                                              bool allow_single_cluster = false);

}  // namespace pandora::hdbscan
