#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::hdbscan {

/// HDBSCAN* core distance: the distance from each point to its minPts-th
/// nearest neighbour, the point itself counted among the minPts (so
/// minPts = 2 is the distance to the nearest other point, matching the
/// paper's default "mpts = 2").  minPts = 1 yields zeros (plain
/// single-linkage on Euclidean distance).
[[nodiscard]] std::vector<double> core_distances(const exec::Executor& exec,
                                                 const spatial::PointSet& points,
                                                 const spatial::KdTree& tree, int min_pts);

/// The cross-call core-distance cache: returns the per-point core distances
/// at `min_pts`, reusing the copy stored in the Executor's ArtifactCache when
/// the point-set fingerprint AND `min_pts` match — two different `min_pts`
/// values over the same points derive distinct keys and never alias, which is
/// what makes repeated mpts sweeps replays rather than rebuilds.  Entries
/// remember the PointSet object they were computed over (cf. kdtree_cached);
/// mutated or different point sets miss.  With
/// `Executor::set_artifact_caching(false)` every call recomputes.
/// `points_fingerprint` shares a precomputed `point_set_fingerprint` pass,
/// as in `kdtree_cached`.
[[nodiscard]] std::shared_ptr<const std::vector<double>> core_distances_cached(
    const exec::Executor& exec, const spatial::PointSet& points, const spatial::KdTree& tree,
    int min_pts, std::optional<std::uint64_t> points_fingerprint = std::nullopt);

}  // namespace pandora::hdbscan
