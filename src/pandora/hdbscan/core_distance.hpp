#pragma once

#include <vector>

#include "pandora/common/types.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/exec/space.hpp"
#include "pandora/spatial/kdtree.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::hdbscan {

/// HDBSCAN* core distance: the distance from each point to its minPts-th
/// nearest neighbour, the point itself counted among the minPts (so
/// minPts = 2 is the distance to the nearest other point, matching the
/// paper's default "mpts = 2").  minPts = 1 yields zeros (plain
/// single-linkage on Euclidean distance).
[[nodiscard]] std::vector<double> core_distances(const exec::Executor& exec,
                                                 const spatial::PointSet& points,
                                                 const spatial::KdTree& tree, int min_pts);

/// Deprecated shim over the per-thread default executor.
PANDORA_DEPRECATED("pass a const exec::Executor& instead of a bare Space")
[[nodiscard]] std::vector<double> core_distances(exec::Space space,
                                                 const spatial::PointSet& points,
                                                 const spatial::KdTree& tree, int min_pts);

}  // namespace pandora::hdbscan
