#include "pandora/hdbscan/core_distance.hpp"

#include "pandora/common/expect.hpp"
#include "pandora/exec/fingerprint.hpp"
#include "pandora/spatial/knn.hpp"

namespace pandora::hdbscan {

std::vector<double> core_distances(const exec::Executor& exec, const spatial::PointSet& points,
                                   const spatial::KdTree& tree, int min_pts) {
  PANDORA_EXPECT(min_pts >= 1, "minPts must be at least 1");
  return spatial::kth_neighbor_distances(exec, points, tree, min_pts - 1);
}

namespace {

/// A core-distance artifact as stored in the Executor's ArtifactCache.
struct CachedCoreDistances {
  std::vector<double> values;
  const spatial::PointSet* points = nullptr;
};

}  // namespace

std::shared_ptr<const std::vector<double>> core_distances_cached(
    const exec::Executor& exec, const spatial::PointSet& points, const spatial::KdTree& tree,
    int min_pts, std::optional<std::uint64_t> points_fingerprint) {
  const auto compute = [&] {
    auto owned = std::make_shared<CachedCoreDistances>();
    owned->values = core_distances(exec, points, tree, min_pts);
    owned->points = &points;
    return owned;
  };
  if (!exec.artifact_caching()) {
    auto owned = compute();
    const std::vector<double>* view = &owned->values;
    return {std::move(owned), view};
  }

  // min_pts is folded into the key with the full mixer, so a sweep's values
  // occupy distinct slots — see exec/fingerprint.hpp.
  const std::uint64_t base =
      points_fingerprint ? *points_fingerprint : spatial::point_set_fingerprint(exec, points);
  const std::uint64_t key = exec::combine_fingerprint(
      exec::tagged_fingerprint(exec::ArtifactTag::core_distance, base),
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(min_pts)));
  std::shared_ptr<CachedCoreDistances> entry =
      exec.artifact_cache().find<CachedCoreDistances>(key);
  if (entry == nullptr || entry->points != &points) {
    entry = compute();
    exec.artifact_cache().insert(key, entry, exec.cache_owner());
  }
  const std::vector<double>* view = &entry->values;
  return {std::move(entry), view};
}

}  // namespace pandora::hdbscan
