#include "pandora/hdbscan/core_distance.hpp"

#include "pandora/common/expect.hpp"
#include "pandora/spatial/knn.hpp"

namespace pandora::hdbscan {

std::vector<double> core_distances(const exec::Executor& exec, const spatial::PointSet& points,
                                   const spatial::KdTree& tree, int min_pts) {
  PANDORA_EXPECT(min_pts >= 1, "minPts must be at least 1");
  return spatial::kth_neighbor_distances(exec, points, tree, min_pts - 1);
}

std::vector<double> core_distances(exec::Space space, const spatial::PointSet& points,
                                   const spatial::KdTree& tree, int min_pts) {
  return core_distances(exec::default_executor(space), points, tree, min_pts);
}

}  // namespace pandora::hdbscan
