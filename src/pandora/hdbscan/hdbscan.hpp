#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "pandora/common/timer.hpp"
#include "pandora/common/types.hpp"
#include "pandora/dendrogram/dendrogram.hpp"
#include "pandora/exec/executor.hpp"
#include "pandora/graph/edge.hpp"
#include "pandora/hdbscan/condensed_tree.hpp"
#include "pandora/spatial/point_set.hpp"

namespace pandora::hdbscan {

/// Which dendrogram construction the pipeline uses — the axis of the paper's
/// Figure 1 / Figure 15 comparisons.
enum class DendrogramAlgorithm {
  pandora,     ///< this paper (parallel tree contraction)
  union_find,  ///< bottom-up union-find baseline (UnionFind-MT [46])
};

struct HdbscanOptions {
  int min_pts = 2;                  ///< the paper's "mpts" (default 2, Section 6.5)
  index_t min_cluster_size = 5;     ///< condensed-tree shedding threshold
  DendrogramAlgorithm dendrogram_algorithm = DendrogramAlgorithm::pandora;
  bool allow_single_cluster = false;
  ClusterSelectionMethod cluster_selection_method = ClusterSelectionMethod::excess_of_mass;
  double cluster_selection_epsilon = 0.0;  ///< see ExtractOptions
};

struct HdbscanResult {
  std::vector<double> core_distances;
  graph::EdgeList mst;                    ///< mutual-reachability EMST
  dendrogram::Dendrogram dendrogram;
  CondensedTree condensed_tree;
  std::vector<index_t> labels;            ///< per point; kNone = noise
  index_t num_clusters = 0;
  /// Phases: "core_distance", "mst", "sort"/"contraction"/"expansion" (or
  /// "dendrogram" for the union-find baseline), "condense", "extract".
  /// Also forwarded to any Profiler attached to the Executor.
  PhaseTimes times;
};

/// The full HDBSCAN* pipeline (Section 6.5): core distances ->
/// mutual-reachability EMST -> dendrogram -> condensed tree -> stability-
/// optimal flat clusters.  Repeated calls on one Executor reuse its
/// workspace arena, so steady-state queries allocate far less than the
/// first call; with artifact caching on (the default) the kd-tree, the
/// per-mpts core distances and the per-mpts mutual-reachability EMST also
/// replay from the Executor's ArtifactCache, so repeated queries against one
/// point set — and mpts sweeps, which share the tree — skip the
/// corresponding phases entirely.
///
/// `points_fingerprint` overrides the content hash the caches key on: a
/// caller that already ran `point_set_fingerprint` shares the pass, and a
/// caller owning a *mutable* point set (the `dyn::` subsystem) passes an
/// epoch fingerprint instead so every mutation re-keys the artifacts without
/// hashing the data.
[[nodiscard]] HdbscanResult hdbscan(const exec::Executor& exec,
                                    const spatial::PointSet& points,
                                    const HdbscanOptions& options = {},
                                    std::optional<std::uint64_t> points_fingerprint =
                                        std::nullopt);

/// A `min_cluster_size` sweep over one point set: the pipeline runs once up
/// to the dendrogram (kd-tree, core distances and dendrogram served from the
/// ArtifactCache on repeated sweeps), then each sweep value re-condenses
/// the shared dendrogram and re-extracts flat clusters.  Entries are aligned
/// with `min_cluster_sizes`; the shared prefix artifacts are returned once
/// instead of being copied into every entry.
struct MinClusterSizeSweep {
  std::vector<double> core_distances;
  graph::EdgeList mst;
  /// The dendrogram every entry condensed (cache-resident when caching is
  /// on; keeps the artifact alive independently of eviction).
  std::shared_ptr<const dendrogram::Dendrogram> dendrogram;

  struct Entry {
    index_t min_cluster_size = 0;
    CondensedTree condensed_tree;
    std::vector<index_t> labels;  ///< per point; kNone = noise
    index_t num_clusters = 0;
  };
  std::vector<Entry> entries;
};

/// `points_fingerprint` overrides the content hash (see `hdbscan`): the
/// snapshot tier passes its epoch fingerprint so sweep artifacts key on the
/// pinned epoch without hashing the frozen points.
[[nodiscard]] MinClusterSizeSweep hdbscan_sweep_min_cluster_size(
    const exec::Executor& exec, const spatial::PointSet& points,
    std::span<const index_t> min_cluster_sizes, const HdbscanOptions& base = {},
    std::optional<std::uint64_t> points_fingerprint = std::nullopt);

/// An mpts sweep over one point set: one full pipeline per `min_pts` value
/// (results aligned with `min_pts_values`), sharing the kd-tree through the
/// ArtifactCache — only the core distances and the mutual-reachability EMST,
/// which genuinely depend on mpts, are rebuilt per value.  Two sweep values
/// derive distinct core-distance cache keys and never alias.
[[nodiscard]] std::vector<HdbscanResult> hdbscan_sweep_min_pts(
    const exec::Executor& exec, const spatial::PointSet& points,
    std::span<const int> min_pts_values, const HdbscanOptions& base = {},
    std::optional<std::uint64_t> points_fingerprint = std::nullopt);

}  // namespace pandora::hdbscan
