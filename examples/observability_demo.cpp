// Observability tour: the obs:: telemetry the serving stack emits while it
// works — metrics registry (Prometheus text exposition + JSON snapshot) and
// trace spans (Chrome trace_event JSON, load into Perfetto / chrome://tracing).
//
//   $ ./observability_demo [output-dir]        (default /tmp)
//
// Runs a mixed workload: a batched dendrogram-serving phase under an adaptive
// QoS policy (some jobs deliberately shed), then a snapshot read/write phase
// (writer churning inserts/erases and publishing epochs while readers run
// HDBSCAN* against pinned snapshots).  Everything the stack counted and timed
// along the way is then printed as a Prometheus exposition and the recorded
// spans are written as <output-dir>/trace.json; the exposition is also saved
// as <output-dir>/metrics.txt.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "pandora/data/point_generators.hpp"
#include "pandora/data/tree_generators.hpp"
#include "pandora/dendrogram/pandora.hpp"
#include "pandora/exec/backend.hpp"
#include "pandora/obs/metrics.hpp"
#include "pandora/obs/trace.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/serve/batch_executor.hpp"
#include "pandora/snapshot/published_clustering.hpp"

using namespace pandora;

namespace {

/// Batched dendrogram serving with tracing on and an adaptive QoS policy:
/// a warm-up batch teaches the latency model, then a flood that mixes small
/// queries with oversized ones the model predicts will blow the tail.
void serve_phase(const exec::Executor& executor) {
  const index_t n = 4000;
  constexpr std::size_t kQueries = 12;

  std::vector<graph::EdgeList> trees;
  trees.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    Rng rng(100 + i);
    graph::EdgeList tree = data::random_attachment_tree(n, rng);
    data::assign_random_weights(tree, rng);
    trees.push_back(std::move(tree));
  }

  serve::BatchOptions options;
  options.small_query_threshold = static_cast<size_type>(n);
  options.qos.adaptive = true;
  serve::BatchExecutor batch = Pipeline::on(executor).batch(options);

  std::vector<dendrogram::Dendrogram> out(kQueries);
  std::vector<serve::BatchExecutor::Job> jobs;
  for (std::size_t i = 0; i < kQueries; ++i) {
    jobs.push_back(serve::BatchExecutor::Job{
        .run =
            [&, i](const exec::Executor& exec) {
              dendrogram::pandora_dendrogram_into(exec, trees[i], n, {}, out[i]);
            },
        .size_hint = static_cast<size_type>(trees[i].size()),
    });
  }

  // Two passes teach the adaptive model what "normal" looks like; the third
  // adds outliers claiming 100x the size — candidates for predictive
  // shedding once the queue is under pressure.
  (void)batch.run_jobs(jobs);
  (void)batch.run_jobs(jobs);
  std::vector<serve::BatchExecutor::Job> flood = jobs;
  for (std::size_t i = 0; i < flood.size(); i += 3)
    flood[i].size_hint = 100 * static_cast<size_type>(n);
  (void)batch.run_jobs(flood);

  obs::Registry& reg = obs::registry();
  std::printf("serve phase : %llu jobs ok, %llu shed (adaptive QoS)\n",
              static_cast<unsigned long long>(
                  reg.counter_value("pandora_serve_jobs_total{outcome=\"ok\"}")),
              static_cast<unsigned long long>(
                  reg.counter_value("pandora_serve_jobs_total{outcome=\"shed\"}")));
}

/// Snapshot serving under churn: a writer inserting/erasing batches and
/// publishing after every mutation, readers running HDBSCAN* against
/// whatever epoch they acquire.  Each reader gets its own serial executor
/// (the snapshot contract) sharing one trace recorder — its spans land in a
/// per-thread ring and show up as separate trace rows.
void snapshot_phase(obs::TraceRecorder& recorder) {
  constexpr int kReaders = 3;
  constexpr int kQueriesPerReader = 2;
  const index_t n = 2000;

  const exec::Executor writer_exec(exec::serial_backend());
  const exec::ScopedTrace writer_trace(writer_exec, &recorder);
  snapshot::PublishedClustering published(writer_exec);
  published.insert(data::gaussian_blobs(n, 2, 4, 0.03, 0.1, 42));

  hdbscan::HdbscanOptions options;
  options.min_pts = 4;
  options.min_cluster_size = 16;

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<index_t> ids =
          published.insert(data::gaussian_blobs(40, 2, 4, 0.03, 0.1, 1000 + round++));
      published.erase(ids);
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      const exec::Executor reader(exec::serial_backend());
      const exec::ScopedTrace trace(reader, &recorder);
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const exec::ScopedSpan span(reader, "query");
        const snapshot::SnapshotPtr snap = published.acquire();
        (void)snap->hdbscan(reader, options);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  obs::Registry& reg = obs::registry();
  std::printf("snap phase  : %llu epochs published, %llu reclaimed, %lld live\n",
              static_cast<unsigned long long>(
                  reg.counter_value("pandora_snapshot_publishes_total")),
              static_cast<unsigned long long>(
                  reg.counter_value("pandora_snapshot_epochs_reclaimed_total")),
              static_cast<long long>(reg.gauge_value("pandora_snapshot_live_epochs")));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  obs::TraceRecorder recorder;
  {
    const exec::Executor executor(exec::default_backend());
    const exec::ScopedTrace trace(executor, &recorder);
    serve_phase(executor);
  }
  snapshot_phase(recorder);

  // --- exposition ------------------------------------------------------------
  const std::string exposition = obs::registry().prometheus_text();
  std::printf("\n--- Prometheus exposition (what /metrics would serve) ---\n%s",
              exposition.c_str());

  const std::string metrics_path = out_dir + "/metrics.txt";
  if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
    std::fwrite(exposition.data(), 1, exposition.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", metrics_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    return 1;
  }

  const std::string trace_path = out_dir + "/trace.json";
  if (!recorder.write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%llu spans, %llu dropped) — open in Perfetto or "
              "chrome://tracing\n",
              trace_path.c_str(),
              static_cast<unsigned long long>(recorder.events_recorded()),
              static_cast<unsigned long long>(recorder.events_dropped()));
  return 0;
}
