// Quickstart: build a single-linkage dendrogram for a small point cloud with
// the PANDORA algorithm and read clusters off it.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines: generate points,
// build the Euclidean MST, construct the dendrogram, inspect its structure,
// and extract flat clusters at a distance threshold.

#include <cstdio>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/analysis.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

int main() {
  using namespace pandora;

  // 0. The execution context: backend choice + reusable scratch arena +
  //    optional profiler.  Construct one and reuse it for every query.
  const exec::Executor executor(exec::default_backend());

  // 1. Some clustered 2-D data: four Gaussian blobs, 2000 points.
  const spatial::PointSet points = data::gaussian_blobs(
      /*n=*/2000, /*dim=*/2, /*clusters=*/4, /*spread=*/0.02, /*noise_fraction=*/0.05,
      /*seed=*/42);

  // 2. Its Euclidean minimum spanning tree (parallel Borůvka over a kd-tree).
  spatial::KdTree tree(points);
  const graph::EdgeList mst = spatial::euclidean_mst(executor, points, tree);
  std::printf("EMST: %zu edges over %d points\n", mst.size(), points.size());

  // 3. The dendrogram, via PANDORA (recursive tree contraction).  A profiler
  //    attached to the executor shows where the time goes
  //    (sort / contraction / expansion).
  exec::PhaseTimesProfiler profiler;
  executor.set_profiler(&profiler);
  const dendrogram::Dendrogram dendro =
      Pipeline::on(executor)
          .with_validation()                    // we are no hot loop: check the tree
          .build_dendrogram(mst, points.size());
  executor.set_profiler(nullptr);
  const PhaseTimes& times = profiler.times();

  std::printf("dendrogram: root edge weight %.4f, height %d, skewness %.1f\n",
              dendro.weight[0], dendrogram::height(dendro), dendrogram::skewness(dendro));
  const auto counts = dendrogram::classify_edges(dendro);
  std::printf("edge nodes: %d leaf, %d chain, %d alpha\n", counts.leaf_edges,
              counts.chain_edges, counts.alpha_edges);
  for (const auto& [phase, seconds] : times.all())
    std::printf("  %-12s %.4fs\n", phase.c_str(), seconds);

  // 4. Flat single-linkage clusters: cut all edges longer than 0.1.
  const std::vector<index_t> labels = dendrogram::cut_labels(dendro, 0.1);
  index_t num_clusters = 0;
  for (const index_t l : labels) num_clusters = std::max(num_clusters, l + 1);
  std::printf("cut at 0.1: %d clusters\n", num_clusters);

  // 5. Sizes of the four biggest clusters (the planted blobs).
  std::vector<index_t> sizes(static_cast<std::size_t>(num_clusters), 0);
  for (const index_t l : labels) ++sizes[static_cast<std::size_t>(l)];
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("largest clusters:");
  for (index_t i = 0; i < std::min<index_t>(4, num_clusters); ++i)
    std::printf(" %d", sizes[static_cast<std::size_t>(i)]);
  std::printf("\n");
  return 0;
}
