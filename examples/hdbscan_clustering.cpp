// HDBSCAN* end to end: density-based clustering with noise rejection on data
// with clusters of very different densities — the workload class the paper's
// introduction motivates (Section 6.5).
//
//   $ ./hdbscan_clustering [n]
//
// Compares the PANDORA-backed pipeline with the union-find baseline and
// verifies they produce the identical clustering, then prints the phase
// breakdown that makes the paper's Figure 1 argument.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "pandora/data/point_generators.hpp"
#include "pandora/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace pandora;
  const index_t n = argc > 1 ? std::atoi(argv[1]) : 50000;

  // Power-law blobs: many clusters spanning a decade of densities plus
  // implicit background sparsity — hard for flat DBSCAN, natural for HDBSCAN*.
  const spatial::PointSet points = data::power_law_blobs(n, 2, 40, 1.3, 7);

  const exec::Executor executor(exec::default_backend());
  const auto pipeline = Pipeline::on(executor).with_min_pts(4).with_min_cluster_size(25);

  const hdbscan::HdbscanResult result = pipeline.run_hdbscan(points);

  std::printf("HDBSCAN* on %d points (minPts=%d, minClusterSize=%d)\n", points.size(),
              4, 25);
  std::printf("clusters found: %d\n", result.num_clusters);
  const auto noise = static_cast<index_t>(
      std::count(result.labels.begin(), result.labels.end(), kNone));
  std::printf("noise points: %d (%.1f%%)\n", noise, 100.0 * noise / points.size());

  std::map<index_t, index_t> sizes;
  for (const index_t l : result.labels)
    if (l != kNone) ++sizes[l];
  std::vector<index_t> sorted_sizes;
  for (const auto& [_, s] : sizes) sorted_sizes.push_back(s);
  std::sort(sorted_sizes.rbegin(), sorted_sizes.rend());
  std::printf("largest clusters:");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, sorted_sizes.size()); ++i)
    std::printf(" %d", sorted_sizes[i]);
  std::printf("\n\nphase breakdown (the Figure 1 story):\n");
  for (const auto& [phase, seconds] : result.times.all())
    std::printf("  %-14s %8.4fs\n", phase.c_str(), seconds);

  // Cross-check against the union-find baseline: identical output, slower
  // dendrogram.
  auto baseline_pipeline = pipeline;  // copy: builders are cheap values
  const hdbscan::HdbscanResult baseline =
      baseline_pipeline.with_dendrogram_algorithm(hdbscan::DendrogramAlgorithm::union_find)
          .run_hdbscan(points);
  std::printf("\nbaseline (union-find) agrees: %s\n",
              baseline.labels == result.labels ? "yes" : "NO (bug!)");
  std::printf("dendrogram time: pandora %.4fs vs union-find %.4fs\n",
              result.times.get("sort") + result.times.get("contraction") +
                  result.times.get("expansion"),
              baseline.times.get("sort") + baseline.times.get("dendrogram"));
  return 0;
}
