// Checkpointed analysis pipeline: compute the expensive stages (EMST +
// dendrogram) once, persist them, then answer many cheap queries — the
// workflow a production clustering service builds around this library.
//
//   $ ./checkpointed_pipeline [n]
//
// Demonstrates: binary MST/dendrogram checkpoints (pandora::io), SciPy
// linkage export, and O(log h) cophenetic-distance queries (pandora's
// Theorem-1 oracle) without ever touching the points again.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/analysis.hpp"
#include "pandora/dendrogram/lca.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/io/io.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

int main(int argc, char** argv) {
  using namespace pandora;
  const index_t n = argc > 1 ? std::atoi(argv[1]) : 100000;
  const std::string checkpoint = "/tmp/pandora_dendrogram_checkpoint.bin";

  // --- producer side: the expensive pass -----------------------------------
  {
    const spatial::PointSet points = data::make_dataset("VisualVar2D", n, 7);
    Timer timer;
    spatial::KdTree tree(points);
    const exec::Executor executor(exec::default_backend());
    const graph::EdgeList mst = spatial::euclidean_mst(executor, points, tree);
    const auto dendro = Pipeline::on(executor).build_dendrogram(mst, points.size());
    std::printf("producer: EMST + dendrogram for %d points in %.2fs\n", points.size(),
                timer.seconds());
    io::save_dendrogram_file(checkpoint, dendro);
    std::printf("producer: checkpoint written to %s\n", checkpoint.c_str());
  }

  // --- consumer side: cheap reloads and queries ----------------------------
  {
    Timer timer;
    const auto dendro = io::load_dendrogram_file(checkpoint);
    std::printf("consumer: reloaded %d-edge dendrogram in %.3fs (validated)\n",
                dendro.num_edges, timer.seconds());

    // SciPy interchange: the first rows of the linkage matrix.
    std::ostringstream csv;
    io::write_linkage_csv(csv, dendro);
    std::istringstream head(csv.str());
    std::string line;
    std::printf("consumer: linkage.csv head:\n");
    for (int i = 0; i < 4 && std::getline(head, line); ++i)
      std::printf("    %s\n", line.c_str());

    // Cophenetic-distance oracle: merge heights between sample points.
    const dendrogram::DendrogramLca oracle(dendro);
    std::printf("consumer: cophenetic distances (single-linkage merge heights):\n");
    for (index_t a = 0; a < 3; ++a)
      for (index_t b = 3; b < 6; ++b)
        std::printf("    d(%d, %d) = %.5f\n", a, b, oracle.cophenetic_distance(a, b));

    // Flat clusterings at several thresholds, all from the same checkpoint.
    std::printf("consumer: clusters by cut threshold:\n");
    for (const double t : {0.001, 0.005, 0.02}) {
      const auto labels = dendrogram::cut_labels(dendro, t);
      index_t clusters = 0;
      for (const index_t l : labels) clusters = std::max(clusters, l + 1);
      std::printf("    t=%.3f -> %d clusters\n", t, clusters);
    }
  }
  std::remove(checkpoint.c_str());
  return 0;
}
