// Friends-of-Friends halo finding — the astronomy use case behind the
// paper's HACC datasets.  FoF groups are exactly single-linkage clusters at
// a fixed "linking length", so one dendrogram supports *every* linking
// length: build it once, cut it many times.
//
//   $ ./cosmology_fof [n]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/analysis.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/spatial/emst.hpp"
#include "pandora/spatial/kdtree.hpp"

int main(int argc, char** argv) {
  using namespace pandora;
  const index_t n = argc > 1 ? std::atoi(argv[1]) : 200000;

  // Soneira-Peebles hierarchical model: the classic synthetic stand-in for
  // gravitationally clustered matter (galaxy surveys, HACC snapshots).
  const spatial::PointSet universe = data::soneira_peebles(n, 3, 4, 1.6, 12, 1234);

  const exec::Executor executor(exec::default_backend());
  Timer total;
  spatial::KdTree tree(universe);
  const graph::EdgeList mst = spatial::euclidean_mst(executor, universe, tree);
  const dendrogram::Dendrogram dendro =
      Pipeline::on(executor).build_dendrogram(mst, universe.size());
  std::printf("built EMST + dendrogram for %d particles in %.2fs\n", universe.size(),
              total.seconds());
  std::printf("dendrogram height %d (skewness %.1f — cosmology data is extremely skewed)\n",
              dendrogram::height(dendro), dendrogram::skewness(dendro));

  // The mean inter-particle spacing sets the natural linking-length scale
  // (b = 0.2 of mean spacing is the standard FoF choice).
  const double mean_spacing = 1.0 / std::cbrt(static_cast<double>(universe.size()));
  std::printf("\n%12s %10s %12s %14s\n", "link/spacing", "halos>=20", "largest", "in halos %");
  for (const double b : {0.1, 0.2, 0.4, 0.8}) {
    const std::vector<index_t> labels = dendrogram::cut_labels(dendro, b * mean_spacing);
    std::map<index_t, index_t> sizes;
    for (const index_t l : labels) ++sizes[l];
    index_t halos = 0, largest = 0, in_halos = 0;
    for (const auto& [_, s] : sizes) {
      if (s >= 20) {
        ++halos;
        in_halos += s;
      }
      largest = std::max(largest, s);
    }
    std::printf("%12.1f %10d %12d %13.1f%%\n", b, halos, largest,
                100.0 * in_halos / universe.size());
  }
  std::printf(
      "\nEach row is one FoF catalogue; all of them reuse the single dendrogram —\n"
      "the reason dendrogram construction throughput matters for cosmology.\n");
  return 0;
}
