// Dendrogram skewness survey — the Section 3.1.3 / Table 2 analysis as a
// library application: how far from balanced are single-linkage dendrograms
// of realistic data, and what does that imply for parallel construction?
//
//   $ ./dendrogram_skewness [n]

#include <cstdio>
#include <cstdlib>

#include "pandora/data/point_generators.hpp"
#include "pandora/dendrogram/analysis.hpp"
#include "pandora/pipeline.hpp"
#include "pandora/spatial/kdtree.hpp"

int main(int argc, char** argv) {
  using namespace pandora;
  const index_t n = argc > 1 ? std::atoi(argv[1]) : 30000;
  const exec::Executor executor(exec::default_backend());

  std::printf("single-linkage dendrogram shape across dataset families (n=%d, mpts=2)\n\n",
              n);
  std::printf("%-16s %4s %8s %9s | %7s %7s %7s | %9s\n", "dataset", "dim", "height",
              "skewness", "leaf", "chain", "alpha", "levels~");
  for (const auto& spec : data::table2_datasets()) {
    const spatial::PointSet points = data::make_dataset(spec.name, n, 7);
    spatial::KdTree tree(points);
    const auto pipeline = Pipeline::on(executor).with_min_pts(2);
    const graph::EdgeList mst = pipeline.build_mst(points, tree);
    const dendrogram::Dendrogram dendro = pipeline.build_dendrogram(mst, points.size());
    const auto counts = dendrogram::classify_edges(dendro);
    // Chain fraction implies how much a single contraction shrinks the tree.
    const double alpha_fraction =
        static_cast<double>(counts.alpha_edges) / static_cast<double>(dendro.num_edges);
    std::printf("%-16s %4d %8d %9.1f | %6.1f%% %6.1f%% %6.1f%% | %9.2f\n", spec.name.c_str(),
                spec.dim, dendrogram::height(dendro), dendrogram::skewness(dendro),
                100.0 * counts.leaf_edges / dendro.num_edges,
                100.0 * counts.chain_edges / dendro.num_edges, 100.0 * alpha_fraction,
                alpha_fraction > 0 ? 1.0 / alpha_fraction : 0.0);
  }
  std::printf(
      "\nTakeaways (match Section 3.1.3): every family is heavily skewed; chain\n"
      "edges dominate skewed dendrograms, which is exactly the structure PANDORA's\n"
      "chain-contraction exploits.\n");
  return 0;
}
